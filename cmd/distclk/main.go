// Command distclk runs the distributed Chained Lin-Kernighan algorithm.
//
// In-process mode (default) simulates the whole cluster with goroutines
// and channels — the configuration used by the paper-reproduction
// experiments:
//
//	distclk -standin fl3795 -nodes 8 -time 60s
//
// TCP mode runs ONE node of a real multi-machine deployment; start
// cmd/hub first, then one distclk per machine:
//
//	hub     -listen :7070 -nodes 8 &
//	distclk -tsp inst.tsp -hub host:7070 -listen :0 -time 600s
//
// Simnet mode replays the cluster on a deterministic virtual-time network
// simulator — same seed, same result, any host — with injectable faults:
//
//	distclk -standin E1k.1 -simnet -nodes 16 -drop 0.05 -viters 200
//
// Past the paper's 8 nodes, -topology picks a scalable overlay
// (hier-hypercube or tree-of-rings keep the per-node degree flat) and the
// exchange-protocol flags bound traffic: -delta sends tour diffs instead
// of full tours (with a full keyframe every N deltas), -gossip replaces
// neighbour broadcast with random fanout, and -batch coalesces queued or
// in-window tours per sender. A 256-node virtual cluster:
//
//	distclk -standin E1k.1 -simnet -nodes 256 -topology tree-of-rings \
//	        -delta 64 -batch 1ms -cv 4 -cr 16 -kpc 1 -viters 6
//
// Every node writes its local best; collect the minimum across nodes, as
// the paper does.
//
// Ctrl-C cancels the solve gracefully: the best tour found so far is
// printed (and written with -tour). -pprof and -metrics expose live
// profiling and counter endpoints for long runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distclk/internal/cli"
	"distclk/internal/clk"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/neighbor"
	"distclk/internal/obs"
	"distclk/internal/simnet"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

func main() {
	var (
		tspPath = flag.String("tsp", "", "TSPLIB instance file")
		standin = flag.String("standin", "", "solve the synthetic stand-in for a paper instance name")
		family  = flag.String("family", "", "generate and solve: family name (with -n)")
		n       = flag.Int("n", 1000, "size for -family")
		seed    = flag.Int64("seed", 1, "random seed")
		nodes   = flag.Int("nodes", 8, "cluster size (in-process mode)")
		topoStr = flag.String("topology", "hypercube", "overlay: hypercube|ring|grid|complete|hier-hypercube|tree-of-rings")
		deltaKF = flag.Int("delta", 0, "tour-diff exchange: full keyframe every N deltas (0 = off, send full tours)")
		gossip  = flag.Int("gossip", 0, "gossip fanout: broadcast to N random peers instead of topology neighbours (0 = off; not available in TCP mode)")
		batch   = flag.Duration("batch", 0, "coalesce queued tours per sender (TCP mode: batch outgoing broadcasts within this window; 0 = off)")
		kick    = flag.String("kick", "random-walk", "kicking strategy")
		cand    = flag.String("candidates", "", "candidate-set strategy: auto|knn|quadrant|alpha|delaunay (empty = engine default knn)")
		relax   = flag.Int("relax", 0, "relaxed-gain depth: LK chain depths below it may carry a bounded non-positive partial gain (0 = classic rule)")
		budget  = flag.Duration("time", 10*time.Second, "per-node time limit")
		target  = flag.Int64("target", 0, "stop at this tour length (0 = none)")
		cv      = flag.Int("cv", 64, "perturbation strength divisor c_v (scale down for short runs)")
		cr      = flag.Int("cr", 256, "restart threshold c_r (scale down for short runs)")
		kpc     = flag.Int64("kpc", 0, "CLK kicks per EA iteration (0 = n/10)")
		hubAddr = flag.String("hub", "", "TCP mode: hub address (runs one node)")
		listen  = flag.String("listen", "127.0.0.1:0", "TCP mode: this node's listen address")
		simMode = flag.Bool("simnet", false, "simulate the cluster on a deterministic virtual-time network")
		simDrop = flag.Float64("drop", 0, "simnet: per-message drop probability")
		simLat  = flag.Duration("latency", 5*time.Millisecond, "simnet: median link latency")
		simIter = flag.Int64("viters", 100, "simnet: EA iterations per node (virtual budget)")
		tourOut = flag.String("tour", "", "write the best tour to this file")
		pprofAd = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")
		metrics = flag.String("metrics", "", "serve a JSON counter snapshot on this address at /metrics")
	)
	flag.Parse()

	in, err := cli.LoadInstance(*tspPath, *standin, *family, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distclk:", err)
		os.Exit(1)
	}
	kind, err := topology.Parse(*topoStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distclk:", err)
		os.Exit(1)
	}
	strategy, err := clk.ParseKick(*kick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distclk:", err)
		os.Exit(1)
	}
	// Reject unknown strategy names here: the engine's constructor has no
	// error path and would silently fall back to knn.
	if *cand != "" && *cand != "auto" {
		if _, err := neighbor.ByName(*cand); err != nil {
			fmt.Fprintln(os.Stderr, "distclk:", err)
			os.Exit(1)
		}
	}
	ex := dist.ExchangeConfig{
		Delta:         *deltaKF > 0,
		KeyframeEvery: *deltaKF,
		Gossip:        *gossip > 0,
		Fanout:        *gossip,
		Coalesce:      *batch > 0,
	}
	if *gossip > 0 && *hubAddr != "" {
		fmt.Fprintln(os.Stderr, "distclk: -gossip is not available in TCP mode (nodes only know their hub-assigned neighbours)")
		os.Exit(1)
	}
	ea := core.DefaultConfig()
	ea.CV, ea.CR = *cv, *cr
	ea.CLK.Kick = strategy
	ea.CLK.Candidates = *cand
	ea.CLK.LK.RelaxDepth = *relax
	ea.KicksPerCall = *kpc

	// Ctrl-C / SIGTERM cancels the context; the solve unwinds and reports
	// its best-so-far tour. Unregistering on the first signal restores the
	// default fatal disposition, so a second one force-quits a stuck drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	// Simnet runs are budgeted in virtual iterations (-viters), and a
	// wall-clock cancellation mid-run would break their byte-identical
	// replay, so the -time limit applies there only when set explicitly
	// (large clusters can need minutes of wall time for setup alone).
	timeSet := false
	flag.Visit(func(f *flag.Flag) { timeSet = timeSet || f.Name == "time" })
	if !*simMode || timeSet {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	var best tsp.Tour
	var bestLen int64
	if *simMode {
		best, bestLen = runSimnet(ctx, in, kind, ea, ex, *nodes, *target, *seed, *simDrop, *simLat, *simIter)
	} else if *hubAddr != "" {
		best, bestLen, err = runTCPNode(ctx, in, *hubAddr, *listen, ea, ex, *batch, *target, *seed, *pprofAd, *metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distclk:", err)
			os.Exit(1)
		}
	} else {
		observer := obs.NewObserver(*nodes, nil)
		if err := cli.ServeDebug(*pprofAd, *metrics, func() any { return observer.Counters() }); err != nil {
			fmt.Fprintln(os.Stderr, "distclk:", err)
			os.Exit(1)
		}
		res := dist.RunCluster(ctx, in, dist.ClusterConfig{
			Nodes:    *nodes,
			Topo:     kind,
			EA:       ea,
			Budget:   core.Budget{Target: *target},
			Seed:     *seed,
			Exchange: ex,
			Obs:      observer,
		})
		best, bestLen = res.BestTour, res.BestLength
		fmt.Printf("cluster: %d nodes, %d broadcasts, best %d in %.2fs wall\n",
			*nodes, res.Broadcasts(), bestLen, res.Elapsed.Seconds())
		for _, s := range res.Stats {
			fmt.Printf("  node %d: best=%d iters=%d kicks=%d sent=%d recv=%d accepted=%d restarts=%d\n",
				s.NodeID, s.BestLength, s.Iterations, s.Kicks, s.Broadcasts, s.Received, s.Accepted, s.Restarts)
		}
	}
	fmt.Printf("final: len=%d\n", bestLen)

	if *tourOut != "" {
		f, err := os.Create(*tourOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distclk:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tsp.WriteTourFile(f, in.Name, best); err != nil {
			fmt.Fprintln(os.Stderr, "distclk:", err)
			os.Exit(1)
		}
	}
}

// runSimnet replays the cluster on simnet's virtual clock: deterministic
// for a fixed seed, independent of host load, with injectable faults.
func runSimnet(ctx context.Context, in *tsp.Instance, kind topology.Kind, ea core.Config, ex dist.ExchangeConfig, nodes int, target, seed int64, drop float64, latency time.Duration, viters int64) (tsp.Tour, int64) {
	res := simnet.Run(ctx, in, simnet.Config{
		Nodes:    nodes,
		Topo:     kind,
		EA:       ea,
		Budget:   core.Budget{Target: target, MaxIterations: viters},
		Seed:     seed,
		Exchange: ex,
		Link: simnet.Link{
			Latency:  simnet.Latency{Kind: simnet.LatencyLognormal, Base: latency},
			DropProb: drop,
		},
	})
	fmt.Printf("simnet: %d nodes, %d broadcasts, best %d at virtual %.2fs (sent=%d delivered=%d dropped=%d)\n",
		nodes, res.Broadcasts(), res.BestLength, res.VirtualElapsed.Seconds(),
		res.Faults.Sent, res.Faults.Delivered, res.Faults.Drops())
	if ex.Delta {
		fmt.Printf("simnet: wire %d B (%d full / %d delta tours, %d gaps, %d coalesced)\n",
			res.Faults.WireBytes, res.Faults.FullTours, res.Faults.DeltaTours,
			res.Faults.DeltaGaps, res.Faults.Coalesced)
	}
	if res.TargetReachedAt > 0 {
		fmt.Printf("simnet: target reached at virtual %.2fs\n", res.TargetReachedAt.Seconds())
	}
	for _, s := range res.Stats {
		fmt.Printf("  node %d: best=%d iters=%d kicks=%d sent=%d recv=%d accepted=%d restarts=%d\n",
			s.NodeID, s.BestLength, s.Iterations, s.Kicks, s.Broadcasts, s.Received, s.Accepted, s.Restarts)
	}
	return res.BestTour, res.BestLength
}

func runTCPNode(ctx context.Context, in *tsp.Instance, hubAddr, listen string, ea core.Config, ex dist.ExchangeConfig, batch time.Duration, target, seed int64, pprofAd, metrics string) (tsp.Tour, int64, error) {
	tn, err := dist.JoinTCPConfig(ctx, hubAddr, listen, in.N(), dist.TCPConfig{
		Exchange:    ex,
		BatchWindow: batch,
	})
	if err != nil {
		return nil, 0, err
	}
	defer tn.Close()
	fmt.Printf("node %d/%d: listening on %s, %d peers\n", tn.ID, tn.Total, tn.Addr(), tn.PeerCount())
	node := core.NewNode(tn.ID, in, ea, tn, seed+int64(tn.ID)*1_000_000_007)
	rec := obs.NewRecorder(tn.ID, obs.SinkFunc(func(e obs.Event) {
		switch e.Kind {
		case obs.KindImprove:
			fmt.Printf("  %8.2fs  len %d\n", e.At.Seconds(), e.Value)
		case obs.KindImproveReceived:
			fmt.Printf("  %8.2fs  len %d (from node %d)\n", e.At.Seconds(), e.Value, e.From)
		}
	}))
	node.SetRecorder(rec)
	if err := cli.ServeDebug(pprofAd, metrics, func() any { return rec.Snapshot() }); err != nil {
		return nil, 0, err
	}
	stats := node.Run(ctx, core.Budget{Target: target})
	fmt.Printf("node %d: best=%d iters=%d kicks=%d sent=%d recv=%d accepted=%d restarts=%d\n",
		stats.NodeID, stats.BestLength, stats.Iterations, stats.Kicks, stats.Broadcasts, stats.Received, stats.Accepted, stats.Restarts)
	tour, l := node.Best()
	return tour, l, nil
}
