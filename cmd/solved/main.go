// Command solved runs the multi-tenant solve service: a JSON HTTP API
// over the chained Lin-Kernighan solver with a bounded worker pool,
// admission control, live SSE/JSONL progress streams, and a result
// cache keyed by instance hash + canonical parameters (DESIGN.md §11).
//
// Usage:
//
//	solved -listen :8080 -workers 2 -queue 8
//
// On SIGINT/SIGTERM the service stops admitting jobs (new submissions
// get 503 + Retry-After), drains in-flight and queued solves within
// -drain, then exits 0. A second signal kills the process immediately.
//
// The -loadtest mode skips serving: it boots ephemeral service
// instances, sweeps the -lt-workers pool sizes with concurrent clients,
// and writes latency percentiles + throughput to -out (the
// BENCH_PR8.json schema, see results/README.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"distclk/internal/cli"
	"distclk/internal/serve"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "listen address")
		workers   = flag.Int("workers", 1, "worker-pool size (concurrent solves)")
		queue     = flag.Int("queue", 8, "queue depth per priority class")
		cacheSize = flag.Int("cache", 128, "result-cache entries")
		maxN      = flag.Int("maxn", 20000, "largest accepted instance (cities)")
		defBudget = flag.Duration("budget", 2*time.Second, "default per-job solve budget")
		maxBudget = flag.Duration("max-budget", 30*time.Second, "largest per-job budget a request may ask for")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown drain deadline")
		pprofAd   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")

		loadtest = flag.Bool("loadtest", false, "run the load-test harness instead of serving")
		out      = flag.String("out", "BENCH_PR8.json", "load-test report path")
		ltWork   = flag.String("lt-workers", "1", "comma-separated worker counts to sweep")
		ltCli    = flag.Int("lt-clients", 4, "concurrent load-test clients")
		ltReq    = flag.Int("lt-requests", 32, "requests per load-test scenario")
		ltN      = flag.Int("lt-n", 200, "load-test instance size")
		ltKicks  = flag.Int64("lt-kicks", 30, "kick budget per load-test solve")
	)
	flag.Parse()

	// First signal begins the graceful path; once the context is
	// cancelled the handler is unregistered, so a second signal takes the
	// default fatal disposition (force quit).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	if *loadtest {
		if err := runLoadtest(ctx, *out, *ltWork, serve.LoadConfig{
			Clients:  *ltCli,
			Requests: *ltReq,
			N:        *ltN,
			MaxKicks: *ltKicks,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "solved:", err)
			os.Exit(1)
		}
		return
	}

	if err := cli.ServeDebug(*pprofAd, "", nil); err != nil {
		fmt.Fprintln(os.Stderr, "solved:", err)
		os.Exit(1)
	}

	// The service root is NOT the signal context: a signal must stop
	// admissions and drain, not yank every running solve. Shutdown
	// force-cancels stragglers itself once the drain deadline passes.
	svc := serve.New(context.Background(), serve.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cacheSize,
		MaxN:          *maxN,
		DefaultBudget: *defBudget,
		MaxBudget:     *maxBudget,
	})
	hs := &http.Server{Addr: *listen, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("solved: listening on %s (%d workers, queue %d)\n", *listen, *workers, *queue)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "solved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("solved: signal received; draining (second signal force-quits)")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "solved: drain:", err)
		hs.Close()
		os.Exit(1)
	}
	hs.Shutdown(dctx)
	fmt.Println("solved: drained; bye")
}

// runLoadtest sweeps the configured worker counts and writes the
// BENCH_PR8.json report.
func runLoadtest(ctx context.Context, out, workerList string, cfg serve.LoadConfig) error {
	for _, f := range strings.Split(workerList, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return fmt.Errorf("bad -lt-workers entry %q", f)
		}
		cfg.Workers = append(cfg.Workers, w)
	}
	fmt.Fprintf(os.Stderr, "solved: load test sweeping workers=%v clients=%d requests=%d n=%d\n",
		cfg.Workers, cfg.Clients, cfg.Requests, cfg.N)
	rep, err := serve.RunLoad(ctx, cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, sc := range rep.Scenarios {
		fmt.Printf("solved: %-8s workers=%d  %6.1f req/s  p50=%.1fms p95=%.1fms p99=%.1fms  (%d ok, %d shed, %d cache hits)\n",
			sc.Name, sc.Workers, sc.ThroughputRPS, sc.Latency.P50, sc.Latency.P95, sc.Latency.P99,
			sc.Completed, sc.Rejected, sc.CacheHits)
	}
	fmt.Fprintf(os.Stderr, "solved: wrote %s\n", out)
	return nil
}
