// Command repro regenerates the repository's reproduction artifacts from
// the experiment manifest (internal/report): the smoke-tier sections of
// EXPERIMENTS.md, the results/smoke/*.csv files, and REPRODUCTION.md.
//
// Modes:
//
//	repro            regenerate the artifacts in place
//	repro -check     regenerate in memory and fail on any byte difference
//	                 against the committed files (CI drift gate)
//	repro -links     check intra-repo markdown links instead of running
//	                 experiments
//
// Everything the command writes is deterministic: experiments run seeded
// kick-budgeted CLK loops and simnet virtual-clock clusters, never wall
// clocks, so -check is a meaningful byte-level comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"distclk/internal/report"
)

func main() {
	dir := flag.String("dir", ".", "repository root (EXPERIMENTS.md and results/ live here)")
	check := flag.Bool("check", false, "verify committed artifacts match regeneration; exit 1 on drift")
	links := flag.Bool("links", false, "check intra-repo markdown links and exit")
	flag.Parse()

	if *links {
		os.Exit(runLinks(*dir))
	}
	os.Exit(run(*dir, *check))
}

func runLinks(dir string) int {
	files := report.DocFiles(dir)
	broken, err := report.CheckLinks(dir, files)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		return 1
	}
	for _, b := range broken {
		fmt.Fprintf(os.Stderr, "broken link: %s\n", b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d broken links in %d files\n", len(broken), len(files))
		return 1
	}
	fmt.Printf("repro: links OK (%d files)\n", len(files))
	return 0
}

// outputs maps artifact paths (relative to the repo root) to their
// regenerated contents.
func outputs(dir string) (map[string]string, error) {
	expPath := filepath.Join(dir, "EXPERIMENTS.md")
	doc, err := os.ReadFile(expPath)
	if err != nil {
		return nil, err
	}

	r := report.NewRunner()
	var sections []report.Section
	var arts []*report.Artifact
	out := map[string]string{}
	for _, e := range report.Manifest() {
		fmt.Fprintf(os.Stderr, "repro: running %s (%s)...\n", e.ID, e.Paper)
		a, err := e.Run(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		if len(a.Deltas) != len(e.Baselines) {
			return nil, fmt.Errorf("%s: %d deltas for %d baselines", e.ID, len(a.Deltas), len(e.Baselines))
		}
		arts = append(arts, a)
		sections = append(sections, report.Section{ID: e.ID, Body: a.Body})
		for _, c := range a.CSVs {
			out[filepath.Join("results", c.Name)] = c.Render()
		}
	}

	spliced, err := report.SpliceAll(string(doc), sections)
	if err != nil {
		return nil, err
	}
	out["EXPERIMENTS.md"] = spliced
	out["REPRODUCTION.md"] = report.ReproductionMD(arts)
	return out, nil
}

func run(dir string, check bool) int {
	out, err := outputs(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		return 1
	}

	// Deterministic file order for logs and drift reports.
	paths := make([]string, 0, len(out))
	for p := range out {
		paths = append(paths, p)
	}
	sortStrings(paths)

	drift := 0
	for _, p := range paths {
		full := filepath.Join(dir, p)
		if check {
			got, err := os.ReadFile(full)
			if err != nil || string(got) != out[p] {
				fmt.Fprintf(os.Stderr, "drift: %s differs from regeneration\n", p)
				drift++
			}
			continue
		}
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		if err := os.WriteFile(full, []byte(out[p]), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", p)
	}
	if check {
		if drift > 0 {
			fmt.Fprintf(os.Stderr, "repro: %d artifacts drifted — run `make repro` and commit\n", drift)
			return 1
		}
		fmt.Printf("repro: %d artifacts byte-identical\n", len(paths))
	}
	return 0
}

// sortStrings is an allocation-free insertion sort; the path list is tiny.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
