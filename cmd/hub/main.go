// Command hub runs the bootstrap node for a multi-machine distributed
// solve. It assigns hypercube slots to joining nodes and hands each the
// addresses of its already-joined neighbours; after the last join it exits
// (the peer-to-peer overlay needs no central component, paper §2.2).
//
// Usage:
//
//	hub -listen :7070 -nodes 8 -topology hypercube
//
// Ctrl-C aborts the bootstrap. -pprof and -metrics expose profiling and a
// JSON join-progress snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"distclk/internal/cli"
	"distclk/internal/dist"
	"distclk/internal/topology"
)

func main() {
	var (
		listen  = flag.String("listen", ":7070", "listen address")
		nodes   = flag.Int("nodes", 8, "expected number of nodes")
		topo    = flag.String("topology", "hypercube", "overlay: hypercube|ring|grid|complete")
		pprofAd = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")
		metrics = flag.String("metrics", "", "serve a JSON join-progress snapshot on this address at /metrics")
	)
	flag.Parse()

	kind, err := topology.Parse(*topo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hub:", err)
		os.Exit(1)
	}
	h, err := dist.NewHub(*listen, *nodes, kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hub:", err)
		os.Exit(1)
	}
	if err := cli.ServeDebug(*pprofAd, *metrics, func() any {
		return map[string]any{"expected": *nodes, "joined": h.Joined(), "topology": kind.String()}
	}); err != nil {
		fmt.Fprintln(os.Stderr, "hub:", err)
		os.Exit(1)
	}

	// Unregistering on the first signal restores the default fatal
	// disposition, so a second Ctrl-C force-quits a stuck bootstrap.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	fmt.Printf("hub: listening on %s for %d nodes (%s)\n", h.Addr(), *nodes, kind)
	if err := h.Serve(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "hub:", err)
		os.Exit(1)
	}
	fmt.Println("hub: all nodes joined; exiting")
}
