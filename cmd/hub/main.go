// Command hub runs the bootstrap node for a multi-machine distributed
// solve. It assigns hypercube slots to joining nodes and hands each the
// addresses of its already-joined neighbours; after the last join it exits
// (the peer-to-peer overlay needs no central component, paper §2.2).
//
// Usage:
//
//	hub -listen :7070 -nodes 8 -topology hypercube
package main

import (
	"flag"
	"fmt"
	"os"

	"distclk/internal/dist"
	"distclk/internal/topology"
)

func main() {
	var (
		listen = flag.String("listen", ":7070", "listen address")
		nodes  = flag.Int("nodes", 8, "expected number of nodes")
		topo   = flag.String("topology", "hypercube", "overlay: hypercube|ring|grid|complete")
	)
	flag.Parse()

	kind, err := topology.Parse(*topo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hub:", err)
		os.Exit(1)
	}
	h, err := dist.NewHub(*listen, *nodes, kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hub:", err)
		os.Exit(1)
	}
	fmt.Printf("hub: listening on %s for %d nodes (%s)\n", h.Addr(), *nodes, kind)
	if err := h.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "hub:", err)
		os.Exit(1)
	}
	fmt.Println("hub: all nodes joined; exiting")
}
