//go:build race

package distclk

// raceSlack widens wall-clock latency assertions when the race detector is
// on: instrumented code typically runs 2-20x slower, so a bound that holds
// comfortably in a normal run (cancellation lag < 500ms) needs headroom
// before it measures anything but detector overhead.
const raceSlack = 6
