module distclk

go 1.22
